// Package array models the ECC-protected SRAM arrays of the core (cache
// data and tags, the recovery unit's architected-state checkpoint). Arrays
// are not part of the latch population — the paper notes that "a large
// portion of the RUT consists of arrays which are protected" — but the beam
// experiment strikes them too, so every cell is individually flippable and
// every read goes through SECDED decode.
package array

import (
	"fmt"

	"sfi/internal/bits"
)

// Protected is an ECC-protected array of 64-bit words.
type Protected struct {
	name  string
	cells []bits.ECCWord

	// Corrected counts single-bit errors corrected on read or scrub.
	Corrected uint64
	// Uncorrectable counts multi-bit errors detected on read or scrub.
	Uncorrectable uint64
}

// New returns a Protected array with entries zeroed words (valid ECC).
func New(name string, entries int) *Protected {
	if entries < 1 {
		panic(fmt.Sprintf("array: entries %d < 1 for %s", entries, name))
	}
	p := &Protected{name: name, cells: make([]bits.ECCWord, entries)}
	zero := bits.EncodeSECDED(0)
	for i := range p.cells {
		p.cells[i] = zero
	}
	return p
}

// Name returns the array's name.
func (p *Protected) Name() string { return p.name }

// Entries returns the number of 64-bit words.
func (p *Protected) Entries() int { return len(p.cells) }

// TotalBits returns the number of storage bits including check bits, the
// population the beam model samples from.
func (p *Protected) TotalBits() int { return len(p.cells) * 72 }

// Write stores a word with freshly computed check bits.
func (p *Protected) Write(entry int, data uint64) {
	p.cells[entry] = bits.EncodeSECDED(data)
}

// Read loads a word through ECC decode. Single-bit errors are corrected
// in place (read-repair) and counted; uncorrectable errors are counted and
// reported so the owner can escalate.
func (p *Protected) Read(entry int) (uint64, bits.ECCResult) {
	data, res := bits.DecodeSECDED(p.cells[entry])
	switch res {
	case bits.ECCCorrected:
		p.Corrected++
		p.cells[entry] = bits.EncodeSECDED(data)
	case bits.ECCUncorrectable:
		p.Uncorrectable++
	}
	return data, res
}

// FlipBit injects a fault into storage: bit < 64 hits the data word,
// bits 64..71 hit the check bits. This is the beam-strike primitive.
func (p *Protected) FlipBit(entry, bit int) {
	if bit < 0 || bit > 71 {
		panic(fmt.Sprintf("array: bit %d out of range [0,72) in %s", bit, p.name))
	}
	if bit < 64 {
		p.cells[entry].Data ^= 1 << uint(bit)
	} else {
		p.cells[entry].Check ^= 1 << uint(bit-64)
	}
}

// ScrubStep checks one entry (correcting if needed) and returns its result;
// the background scrubber calls this round-robin.
func (p *Protected) ScrubStep(entry int) bits.ECCResult {
	_, res := p.Read(entry)
	return res
}

// Snapshot returns a copy of the array contents (not the counters).
func (p *Protected) Snapshot() []bits.ECCWord {
	s := make([]bits.ECCWord, len(p.cells))
	copy(s, p.cells)
	return s
}

// Restore overwrites contents from a snapshot of the same shape.
func (p *Protected) Restore(snap []bits.ECCWord) {
	if len(snap) != len(p.cells) {
		panic(fmt.Sprintf("array: snapshot size %d != %d in %s", len(snap), len(p.cells), p.name))
	}
	copy(p.cells, snap)
}

// ResetCounters zeroes the error counters.
func (p *Protected) ResetCounters() {
	p.Corrected = 0
	p.Uncorrectable = 0
}
