package array

import (
	"math/rand/v2"
	"testing"

	"sfi/internal/bits"
)

func TestWriteReadClean(t *testing.T) {
	p := New("test", 16)
	p.Write(3, 0xdeadbeef)
	v, res := p.Read(3)
	if v != 0xdeadbeef || res != bits.ECCClean {
		t.Errorf("Read = %#x,%v", v, res)
	}
	if p.Corrected != 0 || p.Uncorrectable != 0 {
		t.Error("counters moved on clean read")
	}
}

func TestSingleBitFlipCorrected(t *testing.T) {
	p := New("test", 8)
	p.Write(0, 0x1234567890abcdef)
	p.FlipBit(0, 17)
	v, res := p.Read(0)
	if res != bits.ECCCorrected || v != 0x1234567890abcdef {
		t.Fatalf("Read = %#x,%v, want corrected original", v, res)
	}
	if p.Corrected != 1 {
		t.Errorf("Corrected = %d", p.Corrected)
	}
	// Read-repair: second read is clean.
	_, res = p.Read(0)
	if res != bits.ECCClean {
		t.Errorf("after repair: %v, want clean", res)
	}
}

func TestCheckBitFlipCorrected(t *testing.T) {
	p := New("test", 8)
	p.Write(1, 42)
	p.FlipBit(1, 64+3)
	v, res := p.Read(1)
	if res != bits.ECCCorrected || v != 42 {
		t.Errorf("Read = %d,%v", v, res)
	}
}

func TestDoubleBitFlipUncorrectable(t *testing.T) {
	p := New("test", 8)
	p.Write(2, 0xffff)
	p.FlipBit(2, 5)
	p.FlipBit(2, 40)
	_, res := p.Read(2)
	if res != bits.ECCUncorrectable {
		t.Fatalf("result %v, want uncorrectable", res)
	}
	if p.Uncorrectable != 1 {
		t.Errorf("Uncorrectable = %d", p.Uncorrectable)
	}
}

func TestScrubStep(t *testing.T) {
	p := New("test", 4)
	p.Write(0, 7)
	p.FlipBit(0, 0)
	if res := p.ScrubStep(0); res != bits.ECCCorrected {
		t.Errorf("scrub = %v", res)
	}
	if res := p.ScrubStep(0); res != bits.ECCClean {
		t.Errorf("post-scrub = %v", res)
	}
}

func TestSnapshotRestore(t *testing.T) {
	p := New("test", 4)
	p.Write(0, 1)
	p.Write(1, 2)
	snap := p.Snapshot()
	p.Write(0, 99)
	p.FlipBit(1, 3)
	p.Restore(snap)
	if v, res := p.Read(0); v != 1 || res != bits.ECCClean {
		t.Errorf("entry 0 = %d,%v", v, res)
	}
	if v, res := p.Read(1); v != 2 || res != bits.ECCClean {
		t.Errorf("entry 1 = %d,%v", v, res)
	}
}

func TestTotalBits(t *testing.T) {
	p := New("test", 10)
	if p.TotalBits() != 720 {
		t.Errorf("TotalBits = %d, want 720", p.TotalBits())
	}
}

func TestFlipBitRangePanics(t *testing.T) {
	p := New("test", 2)
	for _, b := range []int{-1, 72, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for bit %d", b)
				}
			}()
			p.FlipBit(0, b)
		}()
	}
}

func TestResetCounters(t *testing.T) {
	p := New("test", 2)
	p.Write(0, 1)
	p.FlipBit(0, 1)
	p.Read(0)
	p.ResetCounters()
	if p.Corrected != 0 || p.Uncorrectable != 0 {
		t.Error("counters not reset")
	}
}

// Property: any single flip anywhere is corrected and data survives.
func TestQuickAnySingleFlipCorrected(t *testing.T) {
	p := New("q", 32)
	rng := rand.New(rand.NewPCG(42, 43))
	for trial := 0; trial < 2000; trial++ {
		e := rng.IntN(32)
		d := rng.Uint64()
		b := rng.IntN(72)
		p.Write(e, d)
		p.FlipBit(e, b)
		v, res := p.Read(e)
		if res != bits.ECCCorrected || v != d {
			t.Fatalf("entry %d bit %d: %#x,%v want corrected %#x", e, b, v, res, d)
		}
	}
}

func cellsEqual(a, b []bits.ECCWord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDeltaRestoreMatchesSnapshot(t *testing.T) {
	p := New("t", 100)
	p.Write(1, 0x11)
	p.SetBaseline()
	if !p.HasBaseline() {
		t.Fatal("baseline not installed")
	}
	ckA := p.CaptureDelta()
	if ckA.Entries() != 0 {
		t.Fatalf("baseline delta has %d entries", ckA.Entries())
	}
	// Advance through every mutation primitive and checkpoint.
	p.Write(1, 0x22)
	p.FlipBit(7, 3)
	p.FlipBit(7, 3) // flip back: entry still marked dirty, value clean
	p.Write(64, 0x33)
	ckB := p.CaptureDelta()
	wantB := p.Snapshot()
	for e := 0; e < p.Entries(); e++ {
		p.Write(e, 0xee)
	}
	p.RestoreDelta(ckB)
	if !cellsEqual(p.Snapshot(), wantB) {
		t.Fatal("delta restore to B does not match snapshot")
	}
	p.RestoreDelta(ckA)
	if v, _ := p.Read(1); v != 0x11 {
		t.Fatalf("cross-restore to baseline: [1] = %#x", v)
	}
}

func TestDeltaTracksReadRepair(t *testing.T) {
	// A corrected read rewrites the cell in place; the entry must be
	// tracked so a later delta restore reverts the repair too.
	p := New("t", 16)
	p.SetBaseline()
	p.FlipBit(2, 5)
	ck := p.CaptureDelta()
	want := p.Snapshot()
	if _, res := p.Read(2); res != bits.ECCCorrected {
		t.Fatal("expected corrected read")
	}
	p.RestoreDelta(ck)
	if !cellsEqual(p.Snapshot(), want) {
		t.Fatal("delta restore did not revert the read-repair")
	}
}

func TestAdoptBaseline(t *testing.T) {
	src := New("t", 32)
	src.Write(4, 0xaa)
	src.SetBaseline()
	src.Write(5, 0xbb)
	ck := src.CaptureDelta()

	p := New("t", 32)
	p.AdoptBaseline(src)
	if v, _ := p.Read(4); v != 0xaa {
		t.Fatalf("adopted baseline [4] = %#x", v)
	}
	p.RestoreDelta(ck)
	if !cellsEqual(p.Snapshot(), src.Snapshot()) {
		t.Fatal("clone after delta restore does not match source")
	}
}
