package store

import (
	"sync"

	"sfi/internal/core"
	"sfi/internal/engine"
	"sfi/internal/obs"
)

// ImageCache holds warm checkpoint images — built, warmed, checkpointed
// prototype runners — keyed by engine.ImageDigest of their config. The
// expensive phase-1/2 boot (AVP generation, warm-up, phased checkpoints)
// is identical for every campaign on the same (backend, workload, config)
// digest, so the cache builds it once and serves each campaign a cheap
// warm clone. Cached prototypes are never run: they exist only to be
// cloned, which keeps them quiescent and makes concurrent clones safe.
//
// Builds are single-flight: concurrent requests for the same digest share
// one build, and a failed build is evicted so the next request retries.
type ImageCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*imageEntry
	order   []string // LRU order, least recently used first

	hits, misses uint64

	// build is the prototype constructor (core.NewRunner); a package
	// variable-style seam so tests can count and fail builds.
	build func(core.RunnerConfig) (*core.Runner, error)
}

type imageEntry struct {
	ready chan struct{} // closed when the build finished (either way)
	proto *core.Runner
	err   error
}

// NewImageCache returns a cache bounded to max images (≤0 = 4). Eviction
// is LRU; an evicted image is rebuilt on next use.
func NewImageCache(max int) *ImageCache {
	if max <= 0 {
		max = 4
	}
	return &ImageCache{
		max:     max,
		entries: make(map[string]*imageEntry),
		build:   core.NewRunner,
	}
}

// Runner returns a warm clone of the checkpoint image for cfg, building
// the image first if the cache doesn't hold it. hit reports whether the
// image was already cached (including joining a build in flight — the
// boot cost is shared either way).
func (c *ImageCache) Runner(cfg core.RunnerConfig) (proto *core.Runner, hit bool, err error) {
	digest := engine.ImageDigest(cfg)
	c.mu.Lock()
	e := c.entries[digest]
	if e != nil {
		c.hits++
		c.touchLocked(digest)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		return e.proto.Clone(), true, nil
	}
	c.misses++
	e = &imageEntry{ready: make(chan struct{})}
	c.entries[digest] = e
	c.touchLocked(digest)
	c.evictLocked()
	build := c.build
	c.mu.Unlock()

	// Build outside the lock: a boot takes long enough that holding the
	// cache closed would serialize unrelated campaigns behind it.
	e.proto, e.err = build(cfg)
	if e.err != nil {
		c.mu.Lock()
		if c.entries[digest] == e {
			c.dropLocked(digest)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	if e.err != nil {
		return nil, false, e.err
	}
	return e.proto.Clone(), false, nil
}

// RunnerTraced is Runner with the image acquisition recorded as a span
// under parent: a cache miss becomes an "image.build" span covering the
// shared prototype boot, a hit becomes an "image.clone" span covering only
// the warm clone (including any wait for a build in flight). A nil tracer
// degrades to plain Runner.
func (c *ImageCache) RunnerTraced(cfg core.RunnerConfig, tr *obs.Tracer, parent obs.SpanContext) (*core.Runner, bool, error) {
	if tr == nil {
		return c.Runner(cfg)
	}
	sp := tr.StartSpan("image.build", "store", parent)
	proto, hit, err := c.Runner(cfg)
	if hit {
		sp.Name = "image.clone"
	}
	sp.Attr("digest", engine.ImageDigest(cfg))
	if err != nil {
		sp.Attr("error", err.Error())
	}
	sp.End()
	return proto, hit, err
}

// Stats is a point-in-time view of the cache's effectiveness.
type Stats struct {
	Images   int     `json:"images"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// Stats returns the cache's hit/miss counters.
func (c *ImageCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{Images: len(c.entries), Hits: c.hits, Misses: c.misses}
	if total := c.hits + c.misses; total > 0 {
		st.HitRatio = float64(c.hits) / float64(total)
	}
	return st
}

// touchLocked moves digest to the most-recently-used end.
func (c *ImageCache) touchLocked(digest string) {
	for i, d := range c.order {
		if d == digest {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, digest)
}

// dropLocked removes digest entirely.
func (c *ImageCache) dropLocked(digest string) {
	delete(c.entries, digest)
	for i, d := range c.order {
		if d == digest {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// evictLocked enforces the size bound, evicting least-recently-used images
// (never the one just inserted — it is at the MRU end).
func (c *ImageCache) evictLocked() {
	for len(c.entries) > c.max && len(c.order) > 1 {
		c.dropLocked(c.order[0])
	}
}
