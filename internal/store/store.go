// Package store is the campaign server's persistence layer: a
// content-addressed object store for finished reports, a spec-digest index
// that makes identical campaign submissions dedup to one stored report,
// per-campaign metadata records, and the on-disk homes of campaign
// journals and shard-event traces. Everything lives under one root
// directory:
//
//	objects/<aa>/<sha256>   immutable blobs, addressed by content hash
//	reports/<spec-digest>   index: spec digest → report object hash
//	campaigns/<id>.json     campaign records (queue state, timings)
//	journals/<id>.journal   dist coordinator journals (resume)
//	events/<id>.jsonl       shard-lifecycle and convergence event traces
//
// Objects and index entries are written via temp-file + rename, so a
// crashed writer never leaves a torn blob behind; re-putting identical
// content is an idempotent no-op.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is a content-addressed campaign store rooted at one directory.
type Store struct {
	dir string
}

// Digest returns the canonical content address of any JSON-serializable
// value: the SHA-256 of its encoding. encoding/json emits struct fields in
// declaration order and sorts map keys, so the address is deterministic
// across processes for the wire types this repo stores.
func Digest(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		panic("store: value not serializable: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "reports", "campaigns", "journals", "events"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash)
}

// PutObject stores a blob under its content hash and returns the hash.
// Identical content is stored once.
func (s *Store) PutObject(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	path := s.objectPath(hash)
	if _, err := os.Stat(path); err == nil {
		return hash, nil // content-addressed: already present means identical
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	if err := writeAtomic(path, data); err != nil {
		return "", err
	}
	return hash, nil
}

// GetObject returns the blob stored under hash.
func (s *Store) GetObject(hash string) ([]byte, error) {
	if len(hash) < 3 {
		return nil, fmt.Errorf("store: malformed object hash %q", hash)
	}
	data, err := os.ReadFile(s.objectPath(hash))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// PutReport stores a finished report blob and indexes it under the
// submitting spec's digest, so a later submission of the same spec is
// served from the store instead of re-run. Returns the report's object
// hash.
func (s *Store) PutReport(specDigest string, data []byte) (string, error) {
	hash, err := s.PutObject(data)
	if err != nil {
		return "", err
	}
	if err := writeAtomic(filepath.Join(s.dir, "reports", specDigest), []byte(hash+"\n")); err != nil {
		return "", err
	}
	return hash, nil
}

// ReportHash returns the object hash indexed under a spec digest, if any.
func (s *Store) ReportHash(specDigest string) (string, bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, "reports", specDigest))
	if err != nil {
		return "", false
	}
	return strings.TrimSpace(string(data)), true
}

// GetReport returns the stored report blob for a spec digest plus its
// object hash (the caller's ETag).
func (s *Store) GetReport(specDigest string) ([]byte, string, error) {
	hash, ok := s.ReportHash(specDigest)
	if !ok {
		return nil, "", os.ErrNotExist
	}
	data, err := s.GetObject(hash)
	return data, hash, err
}

// JournalPath is where a campaign's dist coordinator journal lives; the
// coordinator owns the file's format and fsync discipline.
func (s *Store) JournalPath(id string) string {
	return filepath.Join(s.dir, "journals", id+".journal")
}

// HasJournal reports whether a campaign ever journaled a shard.
func (s *Store) HasJournal(id string) bool {
	_, err := os.Stat(s.JournalPath(id))
	return err == nil
}

// EventsPath is where a campaign's shard-lifecycle JSONL trace lives.
func (s *Store) EventsPath(id string) string {
	return filepath.Join(s.dir, "events", id+".jsonl")
}

// SaveCampaign persists one campaign record (any JSON-serializable value)
// under its id, replacing a previous record atomically.
func (s *Store) SaveCampaign(id string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeAtomic(filepath.Join(s.dir, "campaigns", id+".json"), append(data, '\n'))
}

// LoadCampaigns calls fn with every persisted campaign record, in
// unspecified order. fn errors abort the walk.
func (s *Store) LoadCampaigns(fn func(id string, data []byte) error) error {
	entries, err := os.ReadDir(filepath.Join(s.dir, "campaigns"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, "campaigns", e.Name()))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := fn(name, data); err != nil {
			return err
		}
	}
	return nil
}

// writeAtomic writes data via temp-file + rename so readers never observe
// a torn file.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
