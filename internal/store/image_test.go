package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"sfi/internal/core"
	_ "sfi/internal/engine/p6lite" // default backend for real prototype builds
)

// tinyConfig is a runner spec small enough to build for real in tests.
func tinyConfig(seed int) core.RunnerConfig {
	cfg := core.DefaultRunnerConfig()
	cfg.AVP.Testcases = 2
	cfg.AVP.BodyOps = 4 + seed
	return cfg
}

func TestImageCacheHitMiss(t *testing.T) {
	c := NewImageCache(4)
	var builds atomic.Int64
	inner := c.build
	c.build = func(cfg core.RunnerConfig) (*core.Runner, error) {
		builds.Add(1)
		return inner(cfg)
	}

	r1, hit, err := c.Runner(tinyConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first request reported a cache hit")
	}
	r2, hit, err := c.Runner(tinyConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second request for the same config missed")
	}
	if r1 == r2 {
		t.Fatal("cache handed out the same runner twice (must clone)")
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("built %d prototypes, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Images != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 image", st)
	}

	// The clones actually work: both classify the same injection equally.
	a, b := r1.RunInjection(3), r2.RunInjection(3)
	if a.Outcome != b.Outcome {
		t.Fatalf("clones disagree: %v vs %v", a.Outcome, b.Outcome)
	}
}

func TestImageCacheSingleFlight(t *testing.T) {
	c := NewImageCache(4)
	var builds atomic.Int64
	inner := c.build
	c.build = func(cfg core.RunnerConfig) (*core.Runner, error) {
		builds.Add(1)
		return inner(cfg)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Runner(tinyConfig(0)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("concurrent requests triggered %d builds, want 1 (single-flight)", n)
	}
}

func TestImageCacheBuildErrorEvicted(t *testing.T) {
	c := NewImageCache(4)
	boom := errors.New("boom")
	fail := true
	inner := c.build
	c.build = func(cfg core.RunnerConfig) (*core.Runner, error) {
		if fail {
			return nil, boom
		}
		return inner(cfg)
	}
	if _, _, err := c.Runner(tinyConfig(0)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the build error", err)
	}
	fail = false
	if _, hit, err := c.Runner(tinyConfig(0)); err != nil || hit {
		t.Fatalf("after a failed build, retry = (hit=%v, err=%v), want a fresh miss that succeeds", hit, err)
	}
}

func TestImageCacheLRUBound(t *testing.T) {
	c := NewImageCache(2)
	var builds atomic.Int64
	inner := c.build
	c.build = func(cfg core.RunnerConfig) (*core.Runner, error) {
		builds.Add(1)
		return inner(cfg)
	}
	for _, seed := range []int{0, 1, 2} { // 3 distinct images into a 2-image cache
		if _, _, err := c.Runner(tinyConfig(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Images != 2 {
		t.Fatalf("cache holds %d images, want the 2-image bound", st.Images)
	}
	// Image 0 was least recently used and must have been evicted.
	if _, hit, err := c.Runner(tinyConfig(0)); err != nil || hit {
		t.Fatalf("evicted image reported (hit=%v, err=%v), want a rebuild miss", hit, err)
	}
	if n := builds.Load(); n != 4 {
		t.Fatalf("built %d prototypes, want 4 (3 fills + 1 rebuild)", n)
	}
}
