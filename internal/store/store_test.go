package store

import (
	"bytes"
	"os"
	"testing"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestObjectRoundTrip(t *testing.T) {
	s := open(t)
	data := []byte(`{"total":42}`)
	hash, err := s.PutObject(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.PutObject(data)
	if err != nil {
		t.Fatal(err)
	}
	if hash != again {
		t.Fatalf("re-putting identical content changed the hash: %s vs %s", hash, again)
	}
	got, err := s.GetObject(hash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("GetObject = %q, want %q", got, data)
	}
	if _, err := s.GetObject("00" + hash[2:]); err == nil {
		t.Fatal("GetObject of an absent hash must fail")
	}
}

func TestReportIndex(t *testing.T) {
	s := open(t)
	digest := Digest(map[string]int{"flips": 100})
	if _, ok := s.ReportHash(digest); ok {
		t.Fatal("fresh store claims a report")
	}
	hash, err := s.PutReport(digest, []byte("report-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	data, etag, err := s.GetReport(digest)
	if err != nil {
		t.Fatal(err)
	}
	if etag != hash || string(data) != "report-bytes" {
		t.Fatalf("GetReport = (%q, %s), want (report-bytes, %s)", data, etag, hash)
	}
}

func TestDigestDeterministic(t *testing.T) {
	type spec struct {
		Flips int
		Seed  uint64
	}
	a := Digest(spec{Flips: 100, Seed: 7})
	b := Digest(spec{Flips: 100, Seed: 7})
	c := Digest(spec{Flips: 100, Seed: 8})
	if a != b {
		t.Fatal("identical values digest differently")
	}
	if a == c {
		t.Fatal("different values share a digest")
	}
}

func TestCampaignRecords(t *testing.T) {
	s := open(t)
	type rec struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := s.SaveCampaign("c1", rec{ID: "c1", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCampaign("c1", rec{ID: "c1", State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCampaign("c2", rec{ID: "c2", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	err := s.LoadCampaigns(func(id string, data []byte) error {
		seen[id] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("loaded %d records, want 2", len(seen))
	}
	if !bytes.Contains([]byte(seen["c1"]), []byte(`"done"`)) {
		t.Fatalf("c1 record not replaced: %s", seen["c1"])
	}
}

func TestJournalAndEventsPaths(t *testing.T) {
	s := open(t)
	if s.HasJournal("c1") {
		t.Fatal("fresh store claims a journal")
	}
	if err := os.WriteFile(s.JournalPath("c1"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !s.HasJournal("c1") {
		t.Fatal("journal not found at JournalPath")
	}
	if s.EventsPath("c1") == s.JournalPath("c1") {
		t.Fatal("events and journal paths collide")
	}
}
