// Package archsim is the golden architectural reference model for P6LITE:
// a one-instruction-per-step ISA simulator with no micro-architecture. The
// AVP uses it to compute golden end-of-testcase signatures, and the SFI
// harness compares the core model's architected state against it to detect
// silent data corruption ("incorrect architected state" in the paper).
package archsim

import (
	"fmt"
	"math"

	"sfi/internal/isa"
	"sfi/internal/mem"
)

// Event classifies what a Step produced beyond ordinary execution.
type Event int

// Step events.
const (
	EventNone    Event = iota + 1 // ordinary instruction
	EventTestEnd                  // testend barrier reached
	EventHalt                     // halt executed; machine stopped
	EventIllegal                  // undefined opcode (treated as nop)
)

func (e Event) String() string {
	switch e {
	case EventNone:
		return "none"
	case EventTestEnd:
		return "testend"
	case EventHalt:
		return "halt"
	case EventIllegal:
		return "illegal"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// State is the architected state of a P6LITE machine.
type State struct {
	GPR [32]uint64
	FPR [32]uint64 // IEEE-754 double bit patterns
	CR0 uint8      // bits: LT, GT, EQ, SO
	LR  uint64
	CTR uint64
	PC  uint64
}

// Equal reports whether two architected states match exactly.
func (s *State) Equal(o *State) bool { return *s == *o }

// Signature folds the architected register state into one 64-bit word, the
// value the AVP checks at every testend barrier.
func (s *State) Signature() uint64 {
	sig := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		sig ^= v
		sig *= 0x100000001b3
		sig ^= sig >> 29
	}
	for _, g := range s.GPR {
		mix(g)
	}
	for _, f := range s.FPR {
		mix(f)
	}
	mix(uint64(s.CR0))
	mix(s.LR)
	mix(s.CTR)
	return sig
}

// MaskedSignature folds only the registers named by the masks (GPR/FPR by
// register-number bit; SPR bit 0 = CR0, 1 = LR, 2 = CTR). The AVP checks
// this at each testend barrier over the registers the pass has written so
// far, so that pre-existing junk in untouched registers is not part of the
// architected contract.
func (s *State) MaskedSignature(gprMask, fprMask uint32, sprMask uint8) uint64 {
	sig := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		sig ^= v
		sig *= 0x100000001b3
		sig ^= sig >> 29
	}
	for i, g := range s.GPR {
		if gprMask&(1<<uint(i)) != 0 {
			mix(g)
		}
	}
	for i, f := range s.FPR {
		if fprMask&(1<<uint(i)) != 0 {
			mix(f)
		}
	}
	if sprMask&1 != 0 {
		mix(uint64(s.CR0))
	}
	if sprMask&2 != 0 {
		mix(s.LR)
	}
	if sprMask&4 != 0 {
		mix(s.CTR)
	}
	return sig
}

// Sim is the golden simulator: architected state plus a flat memory.
type Sim struct {
	State
	Mem    *mem.Memory
	Halted bool

	// InstCount counts retired instructions, including nops and barriers.
	InstCount uint64
}

// New returns a Sim with zeroed state over the given memory.
func New(m *mem.Memory) *Sim {
	return &Sim{Mem: m}
}

// StepResult reports what one Step did.
type StepResult struct {
	Inst      isa.Inst
	Event     Event
	Signature uint64 // valid when Event == EventTestEnd
}

// Step fetches, decodes and executes one instruction. Calling Step on a
// halted machine is a no-op that reports EventHalt.
func (s *Sim) Step() StepResult {
	if s.Halted {
		return StepResult{Event: EventHalt}
	}
	word := s.Mem.Read32(s.PC)
	in := isa.Decode(word)
	res := StepResult{Inst: in, Event: EventNone}

	nextPC := s.PC + 4
	branchTo := func(off int32) { nextPC = s.PC + uint64(int64(off)*4) }

	switch in.Op {
	case isa.OpADDI:
		s.GPR[in.RT] = s.GPR[in.RA] + uint64(int64(in.Imm))
	case isa.OpADDIS:
		s.GPR[in.RT] = s.GPR[in.RA] + uint64(int64(in.Imm)<<16)
	case isa.OpANDI:
		s.GPR[in.RT] = s.GPR[in.RA] & in.UImm()
	case isa.OpORI:
		s.GPR[in.RT] = s.GPR[in.RA] | in.UImm()
	case isa.OpXORI:
		s.GPR[in.RT] = s.GPR[in.RA] ^ in.UImm()

	case isa.OpLD:
		s.GPR[in.RT] = s.Mem.Read64(s.GPR[in.RA] + uint64(int64(in.Imm)))
	case isa.OpLW:
		s.GPR[in.RT] = uint64(s.Mem.Read32(s.GPR[in.RA] + uint64(int64(in.Imm))))
	case isa.OpSTD:
		s.Mem.Write64(s.GPR[in.RA]+uint64(int64(in.Imm)), s.GPR[in.RT])
	case isa.OpSTW:
		s.Mem.Write32(s.GPR[in.RA]+uint64(int64(in.Imm)), uint32(s.GPR[in.RT]))
	case isa.OpLFD:
		s.FPR[in.RT] = s.Mem.Read64(s.GPR[in.RA] + uint64(int64(in.Imm)))
	case isa.OpSTFD:
		s.Mem.Write64(s.GPR[in.RA]+uint64(int64(in.Imm)), s.FPR[in.RT])

	case isa.OpADD:
		s.GPR[in.RT] = s.GPR[in.RA] + s.GPR[in.RB]
	case isa.OpSUB:
		s.GPR[in.RT] = s.GPR[in.RA] - s.GPR[in.RB]
	case isa.OpAND:
		s.GPR[in.RT] = s.GPR[in.RA] & s.GPR[in.RB]
	case isa.OpOR:
		s.GPR[in.RT] = s.GPR[in.RA] | s.GPR[in.RB]
	case isa.OpXOR:
		s.GPR[in.RT] = s.GPR[in.RA] ^ s.GPR[in.RB]
	case isa.OpSLD:
		s.GPR[in.RT] = s.GPR[in.RA] << (s.GPR[in.RB] & 63)
	case isa.OpSRD:
		s.GPR[in.RT] = s.GPR[in.RA] >> (s.GPR[in.RB] & 63)
	case isa.OpMUL:
		s.GPR[in.RT] = s.GPR[in.RA] * s.GPR[in.RB]
	case isa.OpDIVD:
		s.GPR[in.RT] = divd(s.GPR[in.RA], s.GPR[in.RB])

	case isa.OpCMP:
		s.CR0 = cmpSigned(int64(s.GPR[in.RA]), int64(s.GPR[in.RB]))
	case isa.OpCMPI:
		s.CR0 = cmpSigned(int64(s.GPR[in.RA]), int64(in.Imm))
	case isa.OpCMPL:
		s.CR0 = cmpUnsigned(s.GPR[in.RA], s.GPR[in.RB])

	case isa.OpB:
		branchTo(in.Imm)
	case isa.OpBL:
		s.LR = s.PC + 4
		branchTo(in.Imm)
	case isa.OpBC:
		if crBit(s.CR0, in.BI) == (in.BO&1 == 1) {
			branchTo(in.Imm)
		}
	case isa.OpBLR:
		nextPC = s.LR
	case isa.OpBDNZ:
		s.CTR--
		if s.CTR != 0 {
			branchTo(in.Imm)
		}

	case isa.OpMTCTR:
		s.CTR = s.GPR[in.RA]
	case isa.OpMTLR:
		s.LR = s.GPR[in.RA]
	case isa.OpMFLR:
		s.GPR[in.RT] = s.LR
	case isa.OpMFCTR:
		s.GPR[in.RT] = s.CTR

	case isa.OpFADD:
		s.FPR[in.RT] = f2b(b2f(s.FPR[in.RA]) + b2f(s.FPR[in.RB]))
	case isa.OpFSUB:
		s.FPR[in.RT] = f2b(b2f(s.FPR[in.RA]) - b2f(s.FPR[in.RB]))
	case isa.OpFMUL:
		s.FPR[in.RT] = f2b(b2f(s.FPR[in.RA]) * b2f(s.FPR[in.RB]))
	case isa.OpFDIV:
		s.FPR[in.RT] = f2b(b2f(s.FPR[in.RA]) / b2f(s.FPR[in.RB]))
	case isa.OpFMR:
		s.FPR[in.RT] = s.FPR[in.RB]
	case isa.OpFCMP:
		s.CR0 = fcmp(b2f(s.FPR[in.RA]), b2f(s.FPR[in.RB]))

	case isa.OpNOP:
		// nothing
	case isa.OpTESTEND:
		res.Event = EventTestEnd
	case isa.OpHALT:
		s.Halted = true
		res.Event = EventHalt
	default:
		res.Event = EventIllegal
	}

	s.PC = nextPC
	s.InstCount++
	if res.Event == EventTestEnd {
		res.Signature = s.State.Signature()
	}
	return res
}

// Run steps until an event other than EventNone occurs or maxSteps is
// reached; it returns the terminating result (Event EventNone on budget
// exhaustion).
func (s *Sim) Run(maxSteps int) StepResult {
	for i := 0; i < maxSteps; i++ {
		if r := s.Step(); r.Event != EventNone {
			return r
		}
	}
	return StepResult{Event: EventNone}
}

func divd(a, b uint64) uint64 {
	sb := int64(b)
	if sb == 0 {
		return 0
	}
	sa := int64(a)
	if sa == math.MinInt64 && sb == -1 {
		return 0
	}
	return uint64(sa / sb)
}

func cmpSigned(a, b int64) uint8 {
	switch {
	case a < b:
		return 1 << isa.CRLT
	case a > b:
		return 1 << isa.CRGT
	default:
		return 1 << isa.CREQ
	}
}

func cmpUnsigned(a, b uint64) uint8 {
	switch {
	case a < b:
		return 1 << isa.CRLT
	case a > b:
		return 1 << isa.CRGT
	default:
		return 1 << isa.CREQ
	}
}

func fcmp(a, b float64) uint8 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return 1 << isa.CRSO
	case a < b:
		return 1 << isa.CRLT
	case a > b:
		return 1 << isa.CRGT
	default:
		return 1 << isa.CREQ
	}
}

func crBit(cr uint8, bi uint8) bool { return cr&(1<<bi) != 0 }

func b2f(b uint64) float64 { return math.Float64frombits(b) }
func f2b(f float64) uint64 { return math.Float64bits(f) }
