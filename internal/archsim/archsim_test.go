package archsim

import (
	"math"
	"testing"

	"sfi/internal/isa"
	"sfi/internal/mem"
)

func run(t *testing.T, src string, maxSteps int) *Sim {
	t.Helper()
	m := mem.New(64 * 1024)
	m.LoadProgram(0, isa.MustAssemble(src))
	s := New(m)
	for i := 0; i < maxSteps && !s.Halted; i++ {
		s.Step()
	}
	if !s.Halted {
		t.Fatalf("program did not halt in %d steps", maxSteps)
	}
	return s
}

func TestArithmetic(t *testing.T) {
	s := run(t, `
		addi r1, r0, 7
		addi r2, r0, 5
		add  r3, r1, r2
		sub  r4, r1, r2
		mul  r5, r1, r2
		divd r6, r1, r2
		and  r7, r1, r2
		or   r8, r1, r2
		xor  r9, r1, r2
		halt
	`, 100)
	want := map[int]uint64{3: 12, 4: 2, 5: 35, 6: 1, 7: 5, 8: 7, 9: 2}
	for r, v := range want {
		if s.GPR[r] != v {
			t.Errorf("r%d = %d, want %d", r, s.GPR[r], v)
		}
	}
}

func TestNegativeImmediatesAndShifted(t *testing.T) {
	s := run(t, `
		addi  r1, r0, -1
		addis r2, r0, 1       ; 65536
		addi  r3, r0, 3
		addi  r4, r0, 2
		sld   r5, r3, r4      ; 12
		srd   r6, r2, r4      ; 16384
		halt
	`, 100)
	if s.GPR[1] != 0xffffffffffffffff {
		t.Errorf("r1 = %#x, want all ones", s.GPR[1])
	}
	if s.GPR[2] != 65536 {
		t.Errorf("r2 = %d, want 65536", s.GPR[2])
	}
	if s.GPR[5] != 12 || s.GPR[6] != 16384 {
		t.Errorf("shifts: r5=%d r6=%d", s.GPR[5], s.GPR[6])
	}
}

func TestLogicalImmediatesZeroExtend(t *testing.T) {
	s := run(t, `
		addi r1, r0, -1
		andi r2, r1, 0xffff
		ori  r3, r0, 0x8000
		xori r4, r1, 0xffff
		halt
	`, 100)
	if s.GPR[2] != 0xffff {
		t.Errorf("andi: r2 = %#x", s.GPR[2])
	}
	if s.GPR[3] != 0x8000 {
		t.Errorf("ori: r3 = %#x (must zero-extend)", s.GPR[3])
	}
	if s.GPR[4] != 0xffffffffffff0000 {
		t.Errorf("xori: r4 = %#x", s.GPR[4])
	}
}

func TestDivideEdgeCases(t *testing.T) {
	s := run(t, `
		addi r1, r0, 10
		addi r2, r0, 0
		divd r3, r1, r2     ; div by zero -> 0
		addi r4, r0, -1
		addi r5, r0, 1
		sld  r6, r5, r0     ; r6 = 1... build MinInt64
		addi r7, r0, 63
		sld  r8, r5, r7     ; r8 = 1<<63 = MinInt64
		divd r9, r8, r4     ; overflow case -> 0
		halt
	`, 100)
	if s.GPR[3] != 0 {
		t.Errorf("div by zero: r3 = %d, want 0", s.GPR[3])
	}
	if s.GPR[8] != 1<<63 {
		t.Errorf("r8 = %#x, want 1<<63", s.GPR[8])
	}
	if s.GPR[9] != 0 {
		t.Errorf("overflow divide: r9 = %d, want 0", s.GPR[9])
	}
}

func TestLoadsAndStores(t *testing.T) {
	s := run(t, `
		addi r1, r0, 0x1000
		addi r2, r0, 1234
		std  r2, 0(r1)
		ld   r3, 0(r1)
		stw  r2, 8(r1)
		lw   r4, 8(r1)
		addi r5, r0, -1
		stw  r5, 16(r1)
		lw   r6, 16(r1)    ; must zero-extend
		halt
	`, 100)
	if s.GPR[3] != 1234 || s.GPR[4] != 1234 {
		t.Errorf("r3=%d r4=%d, want 1234", s.GPR[3], s.GPR[4])
	}
	if s.GPR[6] != 0xffffffff {
		t.Errorf("lw zero-extension: r6 = %#x", s.GPR[6])
	}
	if got := s.Mem.Read64(0x1000); got != 1234 {
		t.Errorf("mem[0x1000] = %d", got)
	}
}

func TestCompareAndBranch(t *testing.T) {
	s := run(t, `
		addi r1, r0, 5
		addi r2, r0, 9
		cmp  r1, r2
		bc   1, 0, less      ; branch if LT set
		addi r10, r0, 111    ; must be skipped
	less:
		addi r11, r0, 222
		cmpi r1, 5
		bc   1, 2, eq        ; branch if EQ set
		addi r12, r0, 333    ; skipped
	eq:
		cmpl r2, r1
		bc   0, 0, done      ; branch if LT clear (9 !< 5 unsigned)
		addi r13, r0, 444    ; skipped
	done:
		halt
	`, 100)
	if s.GPR[10] != 0 || s.GPR[12] != 0 || s.GPR[13] != 0 {
		t.Errorf("branch fallthrough executed: r10=%d r12=%d r13=%d",
			s.GPR[10], s.GPR[12], s.GPR[13])
	}
	if s.GPR[11] != 222 {
		t.Errorf("r11 = %d, want 222", s.GPR[11])
	}
}

func TestLoopWithBDNZ(t *testing.T) {
	s := run(t, `
		addi  r1, r0, 10
		mtctr r1
		addi  r2, r0, 0
	loop:
		addi  r2, r2, 3
		bdnz  loop
		mfctr r3
		halt
	`, 200)
	if s.GPR[2] != 30 {
		t.Errorf("r2 = %d, want 30 (10 iterations)", s.GPR[2])
	}
	if s.GPR[3] != 0 {
		t.Errorf("ctr = %d, want 0", s.GPR[3])
	}
}

func TestCallAndReturn(t *testing.T) {
	s := run(t, `
		addi r1, r0, 1
		bl   sub
		addi r3, r0, 100   ; executed after return
		halt
	sub:
		addi r2, r0, 50
		blr
	`, 100)
	if s.GPR[2] != 50 || s.GPR[3] != 100 {
		t.Errorf("r2=%d r3=%d, want 50,100", s.GPR[2], s.GPR[3])
	}
}

func TestMTLRAndBLR(t *testing.T) {
	s := run(t, `
		addi r1, r0, 20    ; address of target (word 5 * 4)
		mtlr r1
		blr
		halt               ; skipped
		halt               ; skipped
		addi r2, r0, 7     ; word 5: landed here
		halt
	`, 100)
	if s.GPR[2] != 7 {
		t.Errorf("r2 = %d, want 7 (blr to mtlr target)", s.GPR[2])
	}
}

func TestFloatingPoint(t *testing.T) {
	m := mem.New(64 * 1024)
	m.Write64(0x2000, math.Float64bits(1.5))
	m.Write64(0x2008, math.Float64bits(2.5))
	m.LoadProgram(0, isa.MustAssemble(`
		addi r1, r0, 0x2000
		lfd  f1, 0(r1)
		lfd  f2, 8(r1)
		fadd f3, f1, f2
		fsub f4, f2, f1
		fmul f5, f1, f2
		fdiv f6, f2, f1
		fmr  f7, f3
		stfd f3, 16(r1)
		fcmp f1, f2
		halt
	`))
	s := New(m)
	for !s.Halted {
		s.Step()
	}
	checks := map[int]float64{3: 4.0, 4: 1.0, 5: 3.75, 7: 4.0}
	for r, want := range checks {
		if got := math.Float64frombits(s.FPR[r]); got != want {
			t.Errorf("f%d = %g, want %g", r, got, want)
		}
	}
	if got := math.Float64frombits(s.FPR[6]); math.Abs(got-5.0/3.0) > 1e-15 {
		t.Errorf("f6 = %g, want 5/3", got)
	}
	if got := m.Read64(0x2010); got != math.Float64bits(4.0) {
		t.Errorf("stfd result = %#x", got)
	}
	if s.CR0 != 1<<isa.CRLT {
		t.Errorf("fcmp CR0 = %#x, want LT", s.CR0)
	}
}

func TestFCMPUnordered(t *testing.T) {
	m := mem.New(4096)
	m.Write64(0x100, math.Float64bits(math.NaN()))
	m.LoadProgram(0, isa.MustAssemble(`
		addi r1, r0, 0x100
		lfd  f1, 0(r1)
		fcmp f1, f1
		halt
	`))
	s := New(m)
	for !s.Halted {
		s.Step()
	}
	if s.CR0 != 1<<isa.CRSO {
		t.Errorf("NaN fcmp CR0 = %#x, want SO", s.CR0)
	}
}

func TestTestEndEventAndSignature(t *testing.T) {
	m := mem.New(4096)
	m.LoadProgram(0, isa.MustAssemble(`
		addi r3, r0, 42
		testend
		halt
	`))
	s := New(m)
	s.Step()
	r := s.Step()
	if r.Event != EventTestEnd {
		t.Fatalf("event = %v, want testend", r.Event)
	}
	if r.Signature == 0 {
		t.Error("signature is zero")
	}
	if r.Signature != s.State.Signature() {
		t.Error("reported signature differs from state signature")
	}
}

func TestSignatureSensitivity(t *testing.T) {
	var a, b State
	if a.Signature() != b.Signature() {
		t.Fatal("identical states disagree")
	}
	b.GPR[17] = 1
	if a.Signature() == b.Signature() {
		t.Error("GPR change not reflected in signature")
	}
	b = a
	b.CR0 = 4
	if a.Signature() == b.Signature() {
		t.Error("CR0 change not reflected in signature")
	}
	b = a
	b.FPR[3] = 1
	if a.Signature() == b.Signature() {
		t.Error("FPR change not reflected in signature")
	}
}

func TestIllegalOpcodeIsEvent(t *testing.T) {
	m := mem.New(4096)
	m.Write32(0, 0) // all-zero word: illegal
	s := New(m)
	r := s.Step()
	if r.Event != EventIllegal {
		t.Errorf("event = %v, want illegal", r.Event)
	}
	if s.PC != 4 {
		t.Errorf("PC = %d, want 4 (illegal advances)", s.PC)
	}
}

func TestHaltStopsMachine(t *testing.T) {
	m := mem.New(4096)
	m.LoadProgram(0, isa.MustAssemble("halt"))
	s := New(m)
	if r := s.Step(); r.Event != EventHalt {
		t.Fatalf("event = %v, want halt", r.Event)
	}
	pc := s.PC
	if r := s.Step(); r.Event != EventHalt {
		t.Error("step on halted machine not reported as halt")
	}
	if s.PC != pc {
		t.Error("halted machine advanced PC")
	}
}

func TestRunUntilEvent(t *testing.T) {
	m := mem.New(4096)
	m.LoadProgram(0, isa.MustAssemble(`
		addi r1, r0, 1
		addi r2, r0, 2
		testend
		halt
	`))
	s := New(m)
	r := s.Run(100)
	if r.Event != EventTestEnd {
		t.Fatalf("Run stopped at %v, want testend", r.Event)
	}
	if s.InstCount != 3 {
		t.Errorf("InstCount = %d, want 3", s.InstCount)
	}
	r = s.Run(100)
	if r.Event != EventHalt {
		t.Errorf("second Run stopped at %v, want halt", r.Event)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	m := mem.New(4096)
	m.LoadProgram(0, isa.MustAssemble("x: b x"))
	s := New(m)
	r := s.Run(50)
	if r.Event != EventNone {
		t.Errorf("event = %v, want none on budget exhaustion", r.Event)
	}
	if s.InstCount != 50 {
		t.Errorf("InstCount = %d, want 50", s.InstCount)
	}
}
