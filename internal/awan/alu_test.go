package awan

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func buildALU(t *testing.T, width int) (*Engine, *CheckedALU) {
	t.Helper()
	nl := NewNetlist()
	alu := nl.BuildCheckedALU("alu", width)
	return MustCompile(nl), alu
}

// loadOp latches operands and lets the result settle (two cycles: operand
// capture, then result capture).
func loadOp(e *Engine, alu *CheckedALU, a, b uint64) {
	e.SetInputBus(alu.InA, a)
	e.SetInputBus(alu.InB, b)
	e.SetInput(alu.Load, true)
	e.Step() // operands captured
	e.SetInput(alu.Load, false)
	e.Step() // result + predicted residue captured
}

func TestCheckedALUComputesSum(t *testing.T) {
	e, alu := buildALU(t, 16)
	f := func(x, y uint16) bool {
		loadOp(e, alu, uint64(x), uint64(y))
		if e.BusValue(alu.Result) != uint64(x+y) {
			return false
		}
		e.Eval()
		return !e.Value(alu.ErrOut) // clean datapath: no error
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckedALUOddWidthCarryCorrection(t *testing.T) {
	// Odd widths exercise the 2^w ≡ 2 (mod 3) carry correction.
	e, alu := buildALU(t, 13)
	rng := rand.New(rand.NewPCG(4, 5))
	for trial := 0; trial < 500; trial++ {
		a := rng.Uint64() & 0x1fff
		b := rng.Uint64() & 0x1fff
		loadOp(e, alu, a, b)
		if got := e.BusValue(alu.Result); got != (a+b)&0x1fff {
			t.Fatalf("sum(%d,%d) = %d", a, b, got)
		}
		e.Eval()
		if e.Value(alu.ErrOut) {
			t.Fatalf("false residue error for %d+%d", a, b)
		}
	}
}

func TestCheckedALUResidueDetectsResultFlips(t *testing.T) {
	e, alu := buildALU(t, 16)
	rng := rand.New(rand.NewPCG(6, 7))
	for trial := 0; trial < 300; trial++ {
		loadOp(e, alu, rng.Uint64()&0xffff, rng.Uint64()&0xffff)
		bit := rng.IntN(len(alu.Result))
		e.FlipLatch(alu.Result[bit])
		e.Eval()
		if !e.Value(alu.ErrOut) {
			t.Fatalf("trial %d: result flip at bit %d undetected", trial, bit)
		}
	}
}

func TestCheckedALUResidueDetectsPredictorFlips(t *testing.T) {
	// Flips in the checker-support latches themselves are detected —
	// benign corruption that the checker reports anyway, the Table 3
	// "conservative checking" mechanism at gate level.
	e, alu := buildALU(t, 16)
	loadOp(e, alu, 1234, 4321)
	e.FlipLatch(alu.ResPred[0])
	e.Eval()
	if !e.Value(alu.ErrOut) {
		t.Error("predicted-residue flip undetected")
	}
}

func TestCheckedALUTripleFlipMayEscape(t *testing.T) {
	// Mod-3 residue has blind spots: flipping bits contributing +1, +1,
	// +1 (three even positions) changes the residue by 0 and escapes.
	e, alu := buildALU(t, 16)
	loadOp(e, alu, 0, 0) // result = 0
	e.FlipLatch(alu.Result[0])
	e.FlipLatch(alu.Result[2])
	e.FlipLatch(alu.Result[4])
	e.Eval()
	if e.Value(alu.ErrOut) {
		t.Error("residue-preserving triple flip was detected (mod-3 blind spot expected)")
	}
	// And the result really is corrupt: gate-level silent corruption.
	if e.BusValue(alu.Result) != 0b10101 {
		t.Errorf("result = %#b", e.BusValue(alu.Result))
	}
}

func TestMacroCampaignOnCheckedALU(t *testing.T) {
	nl := NewNetlist()
	alu := nl.BuildCheckedALU("alu", 12)
	e := MustCompile(nl)

	var wantSum uint64
	cfg := MacroCampaignConfig{
		Stimulus: func(e *Engine, rng *rand.Rand) {
			a := rng.Uint64() & 0xfff
			b := rng.Uint64() & 0xfff
			wantSum = (a + b) & 0xfff
			loadOpRaw(e, alu, a, b)
		},
		Observe: func(e *Engine, rng *rand.Rand) bool {
			e.Eval()
			return e.BusValue(alu.Result) == wantSum
		},
		ErrOut:         alu.ErrOut,
		TrialsPerLatch: 3,
		Seed:           11,
	}
	rep, err := RunMacroCampaign(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 3*(12*3+2) { // a, b, res buses + 2 residue latches
		t.Fatalf("trials = %d", rep.Trials)
	}
	// Result-register flips must be detected, never silent.
	for name, out := range rep.ByLatch {
		if len(name) >= 7 && name[:7] == "alu.res" && name[4] == 'r' {
			if out == MacroSilent {
				t.Errorf("latch %s: silent corruption escaped the residue checker", name)
			}
		}
	}
	if rep.Coverage < 0.5 {
		t.Errorf("checker coverage %.2f implausibly low", rep.Coverage)
	}
	if rep.String() == "" {
		t.Error("empty rendering")
	}
}

// loadOpRaw is loadOp without *testing.T plumbing, for campaign callbacks.
func loadOpRaw(e *Engine, alu *CheckedALU, a, b uint64) {
	e.SetInputBus(alu.InA, a)
	e.SetInputBus(alu.InB, b)
	e.SetInput(alu.Load, true)
	e.Step()
	e.SetInput(alu.Load, false)
	e.Step()
}

func TestMacroCampaignNeedsCallbacks(t *testing.T) {
	nl := NewNetlist()
	nl.Counter("c", 4)
	e := MustCompile(nl)
	if _, err := RunMacroCampaign(e, MacroCampaignConfig{}); err == nil {
		t.Error("no error for missing callbacks")
	}
}

// TestMacroCampaignUnprotectedCounter: flips in an unchecked macro are
// never detected; whether they are masked or silent depends on the
// correctness predicate.
func TestMacroCampaignUnprotectedCounter(t *testing.T) {
	nl := NewNetlist()
	q := nl.Counter("cnt", 6)
	err := nl.Const(false) // no checker at all
	e := MustCompile(nl)

	var expected uint64
	cfg := MacroCampaignConfig{
		Stimulus: func(e *Engine, rng *rand.Rand) {
			// Run the counter to a random phase.
			n := rng.IntN(20)
			for i := 0; i < n; i++ {
				e.Step()
			}
			expected = (e.BusValue(q) + 3) & 63
		},
		Observe: func(e *Engine, rng *rand.Rand) bool {
			e.Step()
			e.Step()
			e.Step()
			return e.BusValue(q) == expected
		},
		ErrOut: err,
		Seed:   13,
	}
	rep, err2 := RunMacroCampaign(e, cfg)
	if err2 != nil {
		t.Fatal(err2)
	}
	if rep.Counts[MacroDetected] != 0 {
		t.Error("unprotected counter produced detections")
	}
	if rep.Counts[MacroSilent] == 0 {
		t.Error("no silent corruption in an unprotected counter")
	}
}
