package awan

import "testing"

// laneFixture builds two 8-bit held registers and their combinational sum —
// enough structure for lane-addressed faults to propagate through gates.
func laneFixture(t *testing.T) (e *Engine, a, b, sum Bus) {
	t.Helper()
	nl := NewNetlist()
	a = nl.LatchBus("a", 8)
	b = nl.LatchBus("b", 8)
	for i := range a {
		nl.SetD(a[i], a[i]) // hold
		nl.SetD(b[i], b[i])
	}
	sum, _ = nl.Adder(a, b, nl.Const(false))
	e = MustCompile(nl)
	for i, id := range a {
		e.SetLatch(id, 0x35>>uint(i)&1 != 0)
	}
	for i, id := range b {
		e.SetLatch(id, 0x4e>>uint(i)&1 != 0)
	}
	e.Eval()
	return e, a, b, sum
}

// TestScalarFacadeBroadcasts: the bool facade drives and reads whole
// words, so scalar users keep every lane coherent.
func TestScalarFacadeBroadcasts(t *testing.T) {
	e, a, _, sum := laneFixture(t)
	if got := e.BusValue(sum); got != (0x35+0x4e)&0xff {
		t.Fatalf("sum = %#x, want %#x", got, (0x35+0x4e)&0xff)
	}
	for _, id := range a {
		if w := e.Word(id); w != 0 && w != ^uint64(0) {
			t.Fatalf("scalar-set latch has mixed lanes: %#x", w)
		}
	}
	e.FlipLatch(a[0])
	if w := e.Word(a[0]); w != broadcast(0x35&1 == 0) {
		t.Fatalf("FlipLatch did not invert all lanes: %#x", w)
	}
	for lane := 0; lane < Lanes; lane++ {
		if e.LaneValue(a[1], lane) != e.Value(a[1]) {
			t.Fatalf("lane %d disagrees with scalar Value", lane)
		}
	}
}

// TestLaneFaultIsolation: a fault flipped into one lane propagates through
// the combinational logic in that lane only; every other lane — above all
// the golden lane 0 — computes the unfaulted result.
func TestLaneFaultIsolation(t *testing.T) {
	e, a, _, sum := laneFixture(t)
	const lane = 5
	e.FlipLatchLanes(a[1], 1<<lane) // a becomes 0x37 in lane 5 only
	e.Eval()
	want := uint64(0x37+0x4e) & 0xff
	if got := e.BusValueLane(sum, lane); got != want {
		t.Errorf("faulted lane sum = %#x, want %#x", got, want)
	}
	for _, l := range []int{0, 4, 6, 63} {
		if got := e.BusValueLane(sum, l); got != (0x35+0x4e)&0xff {
			t.Errorf("unfaulted lane %d sum = %#x", l, got)
		}
	}
	if d := e.Diverged(sum); d != 1<<lane {
		t.Errorf("Diverged = %#x, want %#x", d, uint64(1)<<lane)
	}
}

// TestDivergedMultipleLanes: divergence detection reports exactly the
// faulted lanes, across distinct fault sites.
func TestDivergedMultipleLanes(t *testing.T) {
	e, a, b, sum := laneFixture(t)
	e.FlipLatchLanes(a[0], 1<<3)
	e.FlipLatchLanes(b[7], 1<<17)
	e.Eval()
	if d := e.Diverged(sum); d != 1<<3|1<<17 {
		t.Errorf("Diverged = %#x, want %#x", d, uint64(1<<3|1<<17))
	}
	if d := e.Diverged(a); d != 1<<3 {
		t.Errorf("Diverged(a) = %#x, want %#x", d, uint64(1)<<3)
	}
}

// TestSetLatchLanesMasking: per-lane forcing writes only the masked lanes.
func TestSetLatchLanesMasking(t *testing.T) {
	e, a, _, _ := laneFixture(t)
	id := a[2] // holds 1 (0x35 bit 2)
	e.SetLatchLanes(id, false, 1<<9|1<<30)
	if w := e.Word(id); w != ^uint64(1<<9|1<<30) {
		t.Fatalf("masked clear produced %#x", w)
	}
	e.SetLatchLanes(id, true, 1<<9)
	if w := e.Word(id); w != ^uint64(1<<30) {
		t.Fatalf("masked set produced %#x", w)
	}
}

// TestSnapshotRestoreLanes: checkpoints carry the full lane plane, so a
// restore erases per-lane faults exactly.
func TestSnapshotRestoreLanes(t *testing.T) {
	e, a, _, sum := laneFixture(t)
	snap := e.Snapshot()
	e.FlipLatchLanes(a[4], 1<<21)
	e.Step()
	if e.Diverged(sum) == 0 {
		t.Fatal("fault did not propagate")
	}
	e.Restore(snap)
	e.Eval()
	if d := e.Diverged(sum); d != 0 {
		t.Fatalf("restore left divergence %#x", d)
	}
	if got := e.BusValue(sum); got != (0x35+0x4e)&0xff {
		t.Fatalf("restored sum = %#x", got)
	}
}

// TestCloneIsolatesLanes: a clone's lane plane is independent of the
// original's.
func TestCloneIsolatesLanes(t *testing.T) {
	e, a, _, sum := laneFixture(t)
	c := e.Clone()
	c.FlipLatchLanes(a[0], 1<<2)
	c.Eval()
	e.Eval()
	if d := e.Diverged(sum); d != 0 {
		t.Fatalf("original saw clone's fault: %#x", d)
	}
	if d := c.Diverged(sum); d != 1<<2 {
		t.Fatalf("clone lost its fault: %#x", d)
	}
}
