package awan

import (
	"fmt"
	"math/rand/v2"

	"sfi/internal/engine"
)

// Macro-level SFI: the gate-level counterpart of the core campaign. Every
// latch of a compiled design is flipped under stimulus supplied by the
// caller, and the destiny of each flip is classified by the design's own
// error output plus a caller-provided correctness predicate.

// MacroOutcome classifies one gate-level flip.
type MacroOutcome int

// Macro outcomes.
const (
	// MacroMasked: the flip had no effect on the checked outputs and was
	// never detected.
	MacroMasked MacroOutcome = iota + 1
	// MacroDetected: the design's error output went high.
	MacroDetected
	// MacroSilent: the checked outputs were wrong with no detection —
	// gate-level silent data corruption.
	MacroSilent
)

// Outcome folds the gate-level taxonomy into the unified campaign taxonomy
// (engine.Outcome, re-exported as core.Outcome). The mapping is total and
// stable — dist reports and journals depend on it not changing:
//
//   - MacroMasked → Vanished: no effect, never detected.
//   - MacroDetected → Checkstop: the design's error output fired; a bare
//     checker macro has no recovery hardware, so detection is terminal —
//     the fail-stop outcome.
//   - MacroSilent → SDC: wrong checked outputs with no detection.
//
// Unknown values classify fail-closed as SDC.
func (o MacroOutcome) Outcome() engine.Outcome {
	switch o {
	case MacroMasked:
		return engine.Vanished
	case MacroDetected:
		return engine.Checkstop
	case MacroSilent:
		return engine.SDC
	default:
		return engine.SDC
	}
}

func (o MacroOutcome) String() string {
	switch o {
	case MacroMasked:
		return "masked"
	case MacroDetected:
		return "detected"
	case MacroSilent:
		return "silent"
	default:
		return fmt.Sprintf("MacroOutcome(%d)", int(o))
	}
}

// MacroCampaignConfig drives a gate-level injection sweep.
type MacroCampaignConfig struct {
	// Stimulus drives the design's inputs for one trial and advances it
	// to the state in which the fault will be injected.
	Stimulus func(e *Engine, rng *rand.Rand)
	// Observe clocks the design after injection and reports whether the
	// checked outputs are correct; the campaign separately samples the
	// error output on every cycle of the observation.
	Observe func(e *Engine, rng *rand.Rand) bool
	// ErrOut is the design's error-detection output node.
	ErrOut int
	// Cycles is the number of Step calls Observe is expected to make
	// (documentation; Observe owns the clocking).
	Cycles int
	// TrialsPerLatch repeats each latch's injection under fresh stimulus.
	TrialsPerLatch int
	Seed           uint64
}

// MacroReport aggregates a macro campaign.
type MacroReport struct {
	Trials   int
	ByLatch  map[string]MacroOutcome // worst outcome per latch name
	Counts   map[MacroOutcome]int
	Coverage float64 // detected / (detected + silent)
}

// RunMacroCampaign flips every latch of the engine's design (optionally
// several times) and classifies each flip.
func RunMacroCampaign(e *Engine, cfg MacroCampaignConfig) (*MacroReport, error) {
	if cfg.Stimulus == nil || cfg.Observe == nil {
		return nil, fmt.Errorf("awan: campaign needs Stimulus and Observe")
	}
	trials := cfg.TrialsPerLatch
	if trials < 1 {
		trials = 1
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xaa7a))
	rep := &MacroReport{
		ByLatch: make(map[string]MacroOutcome),
		Counts:  make(map[MacroOutcome]int),
	}
	for _, l := range e.nl.Latches() {
		name := e.nl.nodes[l].name
		worst := MacroMasked
		for t := 0; t < trials; t++ {
			cfg.Stimulus(e, rng)
			e.FlipLatch(l)
			e.Eval()
			detected := e.Value(cfg.ErrOut)
			ok := cfg.Observe(e, rng)
			if e.Value(cfg.ErrOut) {
				detected = true
			}
			var out MacroOutcome
			switch {
			case detected:
				out = MacroDetected
			case ok:
				out = MacroMasked
			default:
				out = MacroSilent
			}
			rep.Counts[out]++
			rep.Trials++
			if out > worst {
				worst = out
			}
		}
		rep.ByLatch[name] = worst
	}
	det, sil := rep.Counts[MacroDetected], rep.Counts[MacroSilent]
	if det+sil > 0 {
		rep.Coverage = float64(det) / float64(det+sil)
	} else {
		rep.Coverage = 1
	}
	return rep, nil
}

// String renders the macro report.
func (r *MacroReport) String() string {
	return fmt.Sprintf("trials %d: masked %d, detected %d, silent %d (checker coverage %.1f%%)",
		r.Trials, r.Counts[MacroMasked], r.Counts[MacroDetected],
		r.Counts[MacroSilent], 100*r.Coverage)
}
