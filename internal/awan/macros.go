package awan

import "fmt"

// Bus is a multi-bit signal: node ids, LSB first.
type Bus []int

// InputBus adds width named inputs ("name[i]").
func (n *Netlist) InputBus(name string, width int) Bus {
	b := make(Bus, width)
	for i := range b {
		b[i] = n.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return b
}

// LatchBus adds width named latches.
func (n *Netlist) LatchBus(name string, width int) Bus {
	b := make(Bus, width)
	for i := range b {
		b[i] = n.Latch(fmt.Sprintf("%s[%d]", name, i))
	}
	return b
}

// ConnectBus wires each latch in q to the corresponding driver in d.
func (n *Netlist) ConnectBus(q, d Bus) {
	if len(q) != len(d) {
		panic(fmt.Sprintf("awan: bus width mismatch %d != %d", len(q), len(d)))
	}
	for i := range q {
		n.SetD(q[i], d[i])
	}
}

// Adder builds a ripple-carry adder over two equal-width buses, returning
// the sum bus and the carry-out node.
func (n *Netlist) Adder(a, b Bus, cin int) (sum Bus, cout int) {
	if len(a) != len(b) {
		panic("awan: adder width mismatch")
	}
	sum = make(Bus, len(a))
	c := cin
	for i := range a {
		axb := n.Xor(a[i], b[i])
		sum[i] = n.Xor(axb, c)
		c = n.Or(n.And(a[i], b[i]), n.And(axb, c))
	}
	return sum, c
}

// ParityTree XOR-reduces a bus to one node.
func (n *Netlist) ParityTree(b Bus) int {
	if len(b) == 0 {
		return n.Const(false)
	}
	nodes := append(Bus(nil), b...)
	for len(nodes) > 1 {
		var next Bus
		for i := 0; i+1 < len(nodes); i += 2 {
			next = append(next, n.Xor(nodes[i], nodes[i+1]))
		}
		if len(nodes)%2 == 1 {
			next = append(next, nodes[len(nodes)-1])
		}
		nodes = next
	}
	return nodes[0]
}

// Counter builds a width-bit free-running binary counter macro and returns
// its state bus.
func (n *Netlist) Counter(name string, width int) Bus {
	q := n.LatchBus(name, width)
	one := n.Const(true)
	zero := n.Const(false)
	inc, _ := n.Adder(q, n.constBus(width, 1, one, zero), zero)
	n.ConnectBus(q, inc)
	return q
}

func (n *Netlist) constBus(width int, v uint64, one, zero int) Bus {
	b := make(Bus, width)
	for i := range b {
		if v&(1<<uint(i)) != 0 {
			b[i] = one
		} else {
			b[i] = zero
		}
	}
	return b
}

// ParityRegister builds the canonical checked-macro: a width-bit register
// loaded from in when load is high, holding otherwise, with a stored parity
// latch maintained at the write port and a continuous parity checker whose
// error output goes high whenever the register contents disagree with the
// stored parity — the gate-level version of the core model's checkers.
// It returns the register bus, the parity latch and the error node.
func (n *Netlist) ParityRegister(name string, in Bus, load int) (q Bus, par int, errOut int) {
	q = n.LatchBus(name, len(in))
	for i := range q {
		n.SetD(q[i], n.Mux(q[i], in[i], load))
	}
	// The stored parity follows the write port: on load it captures the
	// parity of the new data, otherwise it holds.
	par = n.Latch(name + ".par")
	inPar := n.ParityTree(in)
	n.SetD(par, n.Mux(par, inPar, load))
	qPar := n.ParityTree(q)
	errOut = n.Xor(qPar, par)
	return q, par, errOut
}

// BusValue reads a bus as an integer in lane 0, the golden lane.
func (e *Engine) BusValue(b Bus) uint64 {
	return e.BusValueLane(b, 0)
}

// BusValueLane reads a bus as an integer in one simulation lane.
func (e *Engine) BusValueLane(b Bus, lane int) uint64 {
	var v uint64
	for i, id := range b {
		v |= e.vals[id] >> uint(lane) & 1 << uint(i)
	}
	return v
}

// Diverged returns the set of lanes (as a bit mask) whose value of bus b
// differs from lane 0's — the word-parallel divergence detector batched
// fault simulation uses for barrier/golden comparison: a fault lane whose
// architected results no longer match the reference lane has suffered
// silent data corruption.
func (e *Engine) Diverged(b Bus) uint64 {
	var d uint64
	for _, id := range b {
		w := e.vals[id]
		d |= w ^ -(w & 1) // broadcast lane 0's bit, then XOR marks differing lanes
	}
	return d
}

// SetInputBus drives a bus of inputs from an integer.
func (e *Engine) SetInputBus(b Bus, v uint64) {
	for i, id := range b {
		e.SetInput(id, v&(1<<uint(i)) != 0)
	}
}
