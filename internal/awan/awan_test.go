package awan

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestGatesEvaluate(t *testing.T) {
	nl := NewNetlist()
	a := nl.Input("a")
	b := nl.Input("b")
	and := nl.And(a, b)
	or := nl.Or(a, b)
	xor := nl.Xor(a, b)
	not := nl.Not(a)
	mux := nl.Mux(a, b, nl.Input("s"))
	e := MustCompile(nl)

	s, _ := nl.NodeByName("s")
	for _, tc := range []struct{ a, b, s bool }{
		{false, false, false}, {true, false, false},
		{false, true, true}, {true, true, true},
	} {
		e.SetInput(a, tc.a)
		e.SetInput(b, tc.b)
		e.SetInput(s, tc.s)
		e.Eval()
		if e.Value(and) != (tc.a && tc.b) {
			t.Errorf("and(%v,%v) = %v", tc.a, tc.b, e.Value(and))
		}
		if e.Value(or) != (tc.a || tc.b) {
			t.Errorf("or broken")
		}
		if e.Value(xor) != (tc.a != tc.b) {
			t.Errorf("xor broken")
		}
		if e.Value(not) != !tc.a {
			t.Errorf("not broken")
		}
		want := tc.a
		if tc.s {
			want = tc.b
		}
		if e.Value(mux) != want {
			t.Errorf("mux broken")
		}
	}
}

func TestCompileDetectsCombinationalCycle(t *testing.T) {
	nl := NewNetlist()
	a := nl.Input("a")
	// g depends on h, h depends on g: a cycle.
	g := nl.And(a, a)
	nl.nodes[g].b = g + 1 // forward reference to h
	h := nl.Or(g, a)
	_ = h
	if _, err := Compile(nl); err == nil {
		t.Error("no error for combinational cycle")
	}
}

func TestCompileRejectsUnconnectedLatch(t *testing.T) {
	nl := NewNetlist()
	nl.Latch("q")
	if _, err := Compile(nl); err == nil {
		t.Error("no error for latch without next-state input")
	}
}

func TestCounterCounts(t *testing.T) {
	nl := NewNetlist()
	q := nl.Counter("cnt", 8)
	e := MustCompile(nl)
	for i := 0; i < 300; i++ {
		if got := e.BusValue(q); got != uint64(i%256) {
			t.Fatalf("cycle %d: counter = %d", i, got)
		}
		e.Step()
	}
}

func TestAdderMatchesArithmetic(t *testing.T) {
	nl := NewNetlist()
	a := nl.InputBus("a", 16)
	b := nl.InputBus("b", 16)
	sum, cout := nl.Adder(a, b, nl.Const(false))
	e := MustCompile(nl)
	f := func(x, y uint16) bool {
		e.SetInputBus(a, uint64(x))
		e.SetInputBus(b, uint64(y))
		e.Eval()
		full := uint64(x) + uint64(y)
		if e.BusValue(sum) != full&0xffff {
			return false
		}
		return e.Value(cout) == (full > 0xffff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParityTreeMatchesPopcount(t *testing.T) {
	nl := NewNetlist()
	in := nl.InputBus("x", 23)
	p := nl.ParityTree(in)
	e := MustCompile(nl)
	f := func(v uint32) bool {
		x := uint64(v) & ((1 << 23) - 1)
		e.SetInputBus(in, x)
		e.Eval()
		ones := 0
		for i := 0; i < 23; i++ {
			if x&(1<<uint(i)) != 0 {
				ones++
			}
		}
		return e.Value(p) == (ones%2 == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildParityReg(t *testing.T) (*Engine, Bus, int, Bus, int) {
	t.Helper()
	nl := NewNetlist()
	in := nl.InputBus("in", 16)
	load := nl.Input("load")
	q, _, errOut := nl.ParityRegister("r", in, load)
	return MustCompile(nl), in, load, q, errOut
}

func TestParityRegisterLoadsAndHolds(t *testing.T) {
	e, in, load, q, errOut := buildParityReg(t)
	e.SetInputBus(in, 0xabcd)
	e.SetInput(load, true)
	e.Step()
	if e.BusValue(q) != 0xabcd {
		t.Fatalf("register = %#x", e.BusValue(q))
	}
	e.SetInput(load, false)
	e.SetInputBus(in, 0xffff)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if e.BusValue(q) != 0xabcd {
		t.Error("register did not hold")
	}
	e.Eval()
	if e.Value(errOut) {
		t.Error("checker fired on clean register")
	}
}

// TestParityRegisterMacroSFI is a miniature macro-level SFI campaign on the
// gate-level register: every data-latch flip must be detected by the
// continuous parity checker; a simultaneous double flip must escape it.
func TestParityRegisterMacroSFI(t *testing.T) {
	e, in, load, q, errOut := buildParityReg(t)
	rng := rand.New(rand.NewPCG(2, 3))
	for trial := 0; trial < 100; trial++ {
		e.SetInputBus(in, rng.Uint64()&0xffff)
		e.SetInput(load, true)
		e.Step()
		e.SetInput(load, false)
		e.Step()

		e.FlipLatch(q[rng.IntN(len(q))])
		e.Eval()
		if !e.Value(errOut) {
			t.Fatalf("trial %d: single flip undetected", trial)
		}

		// Double flip: parity blind spot.
		i, j := rng.IntN(len(q)), rng.IntN(len(q))
		for j == i {
			j = rng.IntN(len(q))
		}
		e.SetInputBus(in, rng.Uint64()&0xffff)
		e.SetInput(load, true)
		e.Step()
		e.SetInput(load, false)
		e.FlipLatch(q[i])
		e.FlipLatch(q[j])
		e.Eval()
		if e.Value(errOut) {
			t.Fatalf("trial %d: double flip detected by single parity", trial)
		}
	}
}

func TestFlipLatchOnGatePanics(t *testing.T) {
	nl := NewNetlist()
	a := nl.Input("a")
	g := nl.Not(a)
	e := MustCompile(nl)
	defer func() {
		if recover() == nil {
			t.Error("no panic flipping a gate")
		}
	}()
	e.FlipLatch(g)
}

func TestProgramLengthAndGates(t *testing.T) {
	nl := NewNetlist()
	a := nl.InputBus("a", 8)
	b := nl.InputBus("b", 8)
	nl.Adder(a, b, nl.Const(false))
	if nl.Gates() == 0 {
		t.Error("no gates counted")
	}
	e := MustCompile(nl)
	if e.ProgramLength() == 0 {
		t.Error("empty program")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	nl := NewNetlist()
	nl.Input("x")
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate name")
		}
	}()
	nl.Input("x")
}
