// Package awan implements a gate-level netlist emulation engine in the
// style of the paper's Awan accelerator: a design is a network of boolean
// nodes and latches that is compiled (levelized) into a straight-line
// program of boolean-function evaluations, one full execution of which is
// one machine cycle ("each run through the sequence of all instructions in
// all logic processors constitutes one machine cycle"). Latches are
// individually addressable for fault injection, enabling macro-level
// targeted SFI studies on gate-accurate logic.
package awan

import "fmt"

// Kind is a netlist node type.
type Kind int

// Node kinds.
const (
	KindInput Kind = iota + 1
	KindConst
	KindLatch
	KindAnd
	KindOr
	KindXor
	KindNot
	KindMux // S ? B : A
)

func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindConst:
		return "const"
	case KindLatch:
		return "latch"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	case KindXor:
		return "xor"
	case KindNot:
		return "not"
	case KindMux:
		return "mux"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

type node struct {
	kind    Kind
	a, b, s int // operand node ids
	d       int // latch next-state input (latches only)
	name    string
	val     bool // constants: the value
}

// Netlist is a design under construction.
type Netlist struct {
	nodes  []node
	byName map[string]int
}

// NewNetlist returns an empty netlist.
func NewNetlist() *Netlist {
	return &Netlist{byName: make(map[string]int)}
}

func (n *Netlist) add(nd node) int {
	id := len(n.nodes)
	n.nodes = append(n.nodes, nd)
	if nd.name != "" {
		if _, dup := n.byName[nd.name]; dup {
			panic(fmt.Sprintf("awan: duplicate node name %q", nd.name))
		}
		n.byName[nd.name] = id
	}
	return id
}

// Input adds a named primary input.
func (n *Netlist) Input(name string) int {
	return n.add(node{kind: KindInput, name: name})
}

// Const adds a constant node.
func (n *Netlist) Const(v bool) int {
	return n.add(node{kind: KindConst, val: v})
}

// Latch adds a named latch; connect its next-state input with SetD.
func (n *Netlist) Latch(name string) int {
	return n.add(node{kind: KindLatch, name: name, d: -1})
}

// SetD connects latch id's next-state input to node d.
func (n *Netlist) SetD(id, d int) {
	if n.nodes[id].kind != KindLatch {
		panic(fmt.Sprintf("awan: SetD on non-latch node %d", id))
	}
	n.nodes[id].d = d
}

// And adds a 2-input AND gate.
func (n *Netlist) And(a, b int) int { return n.add(node{kind: KindAnd, a: a, b: b}) }

// Or adds a 2-input OR gate.
func (n *Netlist) Or(a, b int) int { return n.add(node{kind: KindOr, a: a, b: b}) }

// Xor adds a 2-input XOR gate.
func (n *Netlist) Xor(a, b int) int { return n.add(node{kind: KindXor, a: a, b: b}) }

// Not adds an inverter.
func (n *Netlist) Not(a int) int { return n.add(node{kind: KindNot, a: a}) }

// Mux adds a 2:1 multiplexer: s ? b : a.
func (n *Netlist) Mux(a, b, s int) int { return n.add(node{kind: KindMux, a: a, b: b, s: s}) }

// NodeByName looks up a named node.
func (n *Netlist) NodeByName(name string) (int, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// Latches returns the ids of all latch nodes in creation order.
func (n *Netlist) Latches() []int {
	var out []int
	for id, nd := range n.nodes {
		if nd.kind == KindLatch {
			out = append(out, id)
		}
	}
	return out
}

// Gates returns the number of combinational gates.
func (n *Netlist) Gates() int {
	g := 0
	for _, nd := range n.nodes {
		switch nd.kind {
		case KindAnd, KindOr, KindXor, KindNot, KindMux:
			g++
		}
	}
	return g
}

// Lanes is the width of the engine's value plane: every node carries one
// uint64 word whose bit k is the node's value in simulation lane k. The
// boolean program is evaluated with bitwise operators, so one Eval advances
// all 64 lanes at once — classic parallel-pattern fault simulation. By
// convention lane 0 is the golden/reference computation and lanes 1..63
// each carry one independent fault (see Diverged).
const Lanes = 64

// broadcast expands a scalar boolean to an all-lanes word.
func broadcast(v bool) uint64 {
	if v {
		return ^uint64(0)
	}
	return 0
}

// Engine is a compiled netlist ready for cycle simulation: the levelized
// boolean program plus the value plane. The scalar facade (SetInput, Value,
// FlipLatch, SetLatch) broadcasts across all lanes, so single-fault users
// never see the lanes; the *Lanes methods address individual lanes for
// bit-parallel batched injection.
type Engine struct {
	nl      *Netlist
	program []int // combinational node ids in dependency order
	latches []int
	vals    []uint64 // one word per node: bit k = lane k's value
	scratch []uint64 // latch next-state buffer, reused across Steps
}

// Compile levelizes the netlist into an executable program. It returns an
// error if any latch lacks a next-state input or the combinational logic
// has a cycle.
func Compile(nl *Netlist) (*Engine, error) {
	for id, nd := range nl.nodes {
		if nd.kind == KindLatch && nd.d < 0 {
			return nil, fmt.Errorf("awan: latch %q (node %d) has no next-state input", nd.name, id)
		}
	}
	// Topological sort over combinational dependencies (latches, inputs
	// and constants are sources).
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]int, len(nl.nodes))
	var program []int
	var visit func(id int) error
	visit = func(id int) error {
		nd := nl.nodes[id]
		switch nd.kind {
		case KindInput, KindConst, KindLatch:
			return nil
		}
		switch state[id] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("awan: combinational cycle through node %d (%v)", id, nd.kind)
		}
		state[id] = visiting
		deps := []int{nd.a}
		switch nd.kind {
		case KindAnd, KindOr, KindXor:
			deps = append(deps, nd.b)
		case KindMux:
			deps = append(deps, nd.b, nd.s)
		}
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[id] = done
		program = append(program, id)
		return nil
	}
	for id := range nl.nodes {
		if err := visit(id); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		nl:      nl,
		program: program,
		latches: nl.Latches(),
		vals:    make([]uint64, len(nl.nodes)),
	}
	e.scratch = make([]uint64, len(e.latches))
	// Constants are sources: pin their values once.
	for id, nd := range nl.nodes {
		if nd.kind == KindConst {
			e.vals[id] = broadcast(nd.val)
		}
	}
	return e, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(nl *Netlist) *Engine {
	e, err := Compile(nl)
	if err != nil {
		panic(err)
	}
	return e
}

// SetInput drives a primary input across all lanes (stimulus is common to
// the golden lane and every fault lane).
func (e *Engine) SetInput(id int, v bool) {
	if e.nl.nodes[id].kind != KindInput {
		panic(fmt.Sprintf("awan: node %d is not an input", id))
	}
	e.vals[id] = broadcast(v)
}

// Value reads any node's current value in lane 0, the golden lane
// (combinational values are those of the last Eval/Step).
func (e *Engine) Value(id int) bool { return e.vals[id]&1 != 0 }

// Word reads any node's raw value word: bit k is the node's value in
// lane k.
func (e *Engine) Word(id int) uint64 { return e.vals[id] }

// LaneValue reads any node's current value in one lane.
func (e *Engine) LaneValue(id, lane int) bool { return e.vals[id]>>uint(lane)&1 != 0 }

// FlipLatch injects a fault: it inverts latch id's current state in every
// lane (the scalar path, where all lanes carry the same simulation).
func (e *Engine) FlipLatch(id int) {
	if e.nl.nodes[id].kind != KindLatch {
		panic(fmt.Sprintf("awan: node %d is not a latch", id))
	}
	e.vals[id] = ^e.vals[id]
}

// FlipLatchLanes inverts latch id's state in exactly the lanes set in mask —
// the batched-injection port: each fault lane gets its own flip while lane 0
// keeps the golden state.
func (e *Engine) FlipLatchLanes(id int, mask uint64) {
	if e.nl.nodes[id].kind != KindLatch {
		panic(fmt.Sprintf("awan: node %d is not a latch", id))
	}
	e.vals[id] ^= mask
}

// SetLatch forces latch id's state in every lane.
func (e *Engine) SetLatch(id int, v bool) {
	if e.nl.nodes[id].kind != KindLatch {
		panic(fmt.Sprintf("awan: node %d is not a latch", id))
	}
	e.vals[id] = broadcast(v)
}

// SetLatchLanes forces latch id's state to v in exactly the lanes set in
// mask, leaving the other lanes untouched (per-lane sticky fault forcing).
func (e *Engine) SetLatchLanes(id int, v bool, mask uint64) {
	if e.nl.nodes[id].kind != KindLatch {
		panic(fmt.Sprintf("awan: node %d is not a latch", id))
	}
	if v {
		e.vals[id] |= mask
	} else {
		e.vals[id] &^= mask
	}
}

// Eval runs the combinational program without clocking the latches. Every
// boolean function is a single bitwise word operation, advancing all 64
// lanes in one pass.
func (e *Engine) Eval() {
	vals := e.vals
	for _, id := range e.program {
		nd := &e.nl.nodes[id]
		switch nd.kind {
		case KindAnd:
			vals[id] = vals[nd.a] & vals[nd.b]
		case KindOr:
			vals[id] = vals[nd.a] | vals[nd.b]
		case KindXor:
			vals[id] = vals[nd.a] ^ vals[nd.b]
		case KindNot:
			vals[id] = ^vals[nd.a]
		case KindMux:
			s := vals[nd.s]
			vals[id] = s&vals[nd.b] | ^s&vals[nd.a]
		case KindConst:
			vals[id] = broadcast(nd.val)
		}
	}
}

// Step executes one machine cycle: evaluate all combinational logic, then
// clock every latch from its next-state input.
func (e *Engine) Step() {
	e.Eval()
	next := e.scratch
	for i, id := range e.latches {
		next[i] = e.vals[e.nl.nodes[id].d]
	}
	for i, id := range e.latches {
		e.vals[id] = next[i]
	}
}

// ProgramLength returns the number of boolean-function instructions per
// cycle.
func (e *Engine) ProgramLength() int { return len(e.program) }

// Snapshot copies the full value plane (latches, inputs and combinational
// values, all lanes) — a gate-level model checkpoint. The returned slice is
// owned by the caller and stays valid across further simulation.
func (e *Engine) Snapshot() []uint64 {
	snap := make([]uint64, len(e.vals))
	copy(snap, e.vals)
	return snap
}

// Restore overwrites the value plane from a Snapshot. The snapshot is read
// only, so one immutable snapshot can restore many engine clones.
func (e *Engine) Restore(snap []uint64) {
	if len(snap) != len(e.vals) {
		panic(fmt.Sprintf("awan: restore snapshot of %d values into %d-node engine",
			len(snap), len(e.vals)))
	}
	copy(e.vals, snap)
}

// Clone returns an independent engine over the same compiled design: the
// immutable netlist, program and latch list are shared, the value plane is
// copied. Clone and original can then be stepped concurrently.
func (e *Engine) Clone() *Engine {
	return &Engine{
		nl:      e.nl,
		program: e.program,
		latches: e.latches,
		vals:    e.Snapshot(),
		scratch: make([]uint64, len(e.latches)),
	}
}
