package awan

import (
	"testing"

	"sfi/internal/engine"
)

// TestMacroOutcomeMappingTotalAndStable pins the MacroOutcome → Outcome
// fold used when gate-level campaigns run through the engine framework.
// The mapping must be total (every macro outcome, including invalid
// values, lands on some campaign outcome) and stable (these pairs are
// wire format: shard reports and journals store the mapped names).
func TestMacroOutcomeMappingTotalAndStable(t *testing.T) {
	want := map[MacroOutcome]engine.Outcome{
		MacroMasked:   engine.Vanished,
		MacroDetected: engine.Checkstop,
		MacroSilent:   engine.SDC,
	}
	for mo, o := range want {
		if got := mo.Outcome(); got != o {
			t.Errorf("%v.Outcome() = %v, want %v", mo, got, o)
		}
	}

	// Totality over every representable value near the defined range plus
	// the zero value: nothing may map to the Outcome zero value, which
	// would silently drop the injection from every campaign count.
	for _, mo := range []MacroOutcome{0, MacroMasked, MacroDetected, MacroSilent, 4, 99, -1} {
		got := mo.Outcome()
		valid := false
		for _, o := range engine.Outcomes {
			if got == o {
				valid = true
			}
		}
		if !valid {
			t.Errorf("MacroOutcome(%d).Outcome() = %v, not a campaign outcome", int(mo), got)
		}
	}

	// Out-of-range values fail closed to SDC, never to a benign outcome.
	for _, mo := range []MacroOutcome{0, 4, -1} {
		if got := mo.Outcome(); got != engine.SDC {
			t.Errorf("invalid MacroOutcome(%d) mapped to %v, want fail-closed SDC", int(mo), got)
		}
	}
}
