package awan

import "fmt"

// Gate-level checked-ALU macro: an adder datapath with a mod-3 residue
// predictor and checker, the netlist-fidelity version of the core model's
// FXU residue checking. The macro latches its operands, computes the sum
// into a result register, and continuously compares the result register's
// mod-3 residue against the residue predicted from the operand registers —
// any odd-weight corruption of the result (or a corruption of the residue
// path itself) raises the error output.

// CheckedALU bundles the macro's external connections.
type CheckedALU struct {
	InA, InB Bus // operand inputs
	Load     int // capture operands and (next cycle) the result
	RegA     Bus // operand registers
	RegB     Bus
	Result   Bus // result register
	ResPred  Bus // predicted residue register (2 bits)
	ErrOut   int // continuous residue-check error
}

// residueTree reduces a bus to its value mod 3, as a 2-bit one-cold pair of
// nodes (r0 = residue bit 0, r1 = residue bit 1), by pairwise folding.
// Each input bit i contributes 2^i mod 3, which alternates 1, 2, 1, 2...
func (n *Netlist) residueTree(b Bus) Bus {
	// Represent a residue as two wires (lo, hi) encoding 0..2 in binary.
	type res struct{ lo, hi int }
	zero := n.Const(false)

	// Per-bit residues: bit at even position contributes 1, odd 2.
	var parts []res
	for i, bit := range b {
		if i%2 == 0 {
			parts = append(parts, res{lo: bit, hi: zero})
		} else {
			parts = append(parts, res{lo: zero, hi: bit})
		}
	}
	if len(parts) == 0 {
		return Bus{zero, zero}
	}

	// addMod3 combines two 2-bit residues with gate logic.
	addMod3 := func(a, b res) res {
		// s = a + b (values 0..4), then mod 3. Enumerate with muxes:
		// out = b==0 ? a : (b==1 ? inc(a) : inc(inc(a)))
		inc := func(x res) res {
			// 0->1, 1->2, 2->0
			lo := n.Not(n.Or(x.lo, x.hi)) // 1 iff x==0
			hi := x.lo                    // 1 iff x==1
			return res{lo: lo, hi: hi}
		}
		a1 := inc(a)
		a2 := inc(a1)
		selLo := n.Mux(a.lo, a1.lo, b.lo) // b.lo selects +1
		selHi := n.Mux(a.hi, a1.hi, b.lo)
		outLo := n.Mux(selLo, a2.lo, b.hi) // b.hi selects +2
		outHi := n.Mux(selHi, a2.hi, b.hi)
		return res{lo: outLo, hi: outHi}
	}

	for len(parts) > 1 {
		var next []res
		for i := 0; i+1 < len(parts); i += 2 {
			next = append(next, addMod3(parts[i], parts[i+1]))
		}
		if len(parts)%2 == 1 {
			next = append(next, parts[len(parts)-1])
		}
		parts = next
	}
	return Bus{parts[0].lo, parts[0].hi}
}

// BuildCheckedALU constructs the macro for a given operand width.
func (n *Netlist) BuildCheckedALU(name string, width int) *CheckedALU {
	m := &CheckedALU{
		InA:  n.InputBus(name+".ina", width),
		InB:  n.InputBus(name+".inb", width),
		Load: n.Input(name + ".load"),
	}
	// Operand registers.
	m.RegA = n.LatchBus(name+".a", width)
	m.RegB = n.LatchBus(name+".b", width)
	for i := 0; i < width; i++ {
		n.SetD(m.RegA[i], n.Mux(m.RegA[i], m.InA[i], m.Load))
		n.SetD(m.RegB[i], n.Mux(m.RegB[i], m.InB[i], m.Load))
	}

	// Datapath: sum of the operand registers into the result register.
	sum, cout := n.Adder(m.RegA, m.RegB, n.Const(false))
	m.Result = n.LatchBus(name+".res", width)
	for i := 0; i < width; i++ {
		n.SetD(m.Result[i], sum[i])
	}

	// Residue prediction from the operand registers (computed by the
	// checker's own tree, latched alongside the result). The result
	// register holds the wrapped sum, which is the full sum minus
	// cout·2^width; 2^width mod 3 alternates 1 (even width) / 2 (odd),
	// so the predictor applies the carry-out correction the way a
	// hardware residue checker does.
	ra := n.residueTree(m.RegA)
	rb := n.residueTree(m.RegB)
	pred := n.addResidue(ra, rb)
	k := 3 - pow2mod3(width) // subtracting x mod 3 == adding 3-x
	corr := pred
	for i := 0; i < k; i++ {
		corr = n.incResidue(corr)
	}
	pred = Bus{
		n.Mux(pred[0], corr[0], cout),
		n.Mux(pred[1], corr[1], cout),
	}
	m.ResPred = n.LatchBus(name+".rsd", 2)
	n.SetD(m.ResPred[0], pred[0])
	n.SetD(m.ResPred[1], pred[1])

	// Continuous check: recompute the result register's residue and
	// compare with the predicted register.
	rres := n.residueTree(m.Result)
	m.ErrOut = n.Or(n.Xor(rres[0], m.ResPred[0]), n.Xor(rres[1], m.ResPred[1]))
	return m
}

// pow2mod3 returns 2^w mod 3 (1 for even w, 2 for odd w).
func pow2mod3(w int) int {
	if w%2 == 0 {
		return 1
	}
	return 2
}

// incResidue increments a 2-wire mod-3 residue: 0→1, 1→2, 2→0.
func (n *Netlist) incResidue(r Bus) Bus {
	lo := n.Not(n.Or(r[0], r[1]))
	hi := r[0]
	return Bus{lo, hi}
}

// addResidue combines two 2-wire mod-3 residues (same recipe as the tree's
// internal combiner, exposed for the predictor).
func (n *Netlist) addResidue(a, b Bus) Bus {
	if len(a) != 2 || len(b) != 2 {
		panic(fmt.Sprintf("awan: residue buses must be 2 wires, got %d/%d", len(a), len(b)))
	}
	inc := func(lo, hi int) (int, int) {
		nlo := n.Not(n.Or(lo, hi))
		nhi := lo
		return nlo, nhi
	}
	a1lo, a1hi := inc(a[0], a[1])
	a2lo, a2hi := inc(a1lo, a1hi)
	selLo := n.Mux(a[0], a1lo, b[0])
	selHi := n.Mux(a[1], a1hi, b[0])
	outLo := n.Mux(selLo, a2lo, b[1])
	outHi := n.Mux(selHi, a2hi, b[1])
	return Bus{outLo, outHi}
}
